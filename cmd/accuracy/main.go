// Command accuracy regenerates the paper's accuracy results:
//
//   - Table II (-table2): the relative FFT round-trip error
//     ‖x − IFFT(FFT(x))‖/‖x‖ for FP64, FP32, and the mixed-precision
//     FP64→FP32 compressed exchange, across GPU counts.
//   - Fig. 2 (-fig2): the error as the communication mantissa is trimmed
//     bit by bit, together with the theoretical acceleration 64/bits,
//     plus the FP64, FP32, and MP 64/32 reference lines.
//
// Usage:
//
//	go run ./cmd/accuracy -table2 [-n 64] [-gpus 12,24,...]
//	go run ./cmd/accuracy -fig2 [-n 32] [-gpus 12]
//	                      [-trace out.json] [-metrics]
//
// -trace writes a Chrome-trace JSON of the last measured cell (analyze
// it with cmd/tracetool); -metrics prints its phase-breakdown report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// recording carries the -trace/-metrics state: every measurement gets a
// fresh recorder, and the last one is exported after the tables.
type recording struct {
	on       bool
	lastRec  *obs.Recorder
	lastCell string
}

var rec recording

// tel is the live-telemetry session of the -serve/-eventlog/-slo flags
// (nil-safe when they are all off).
var tel *telemetry.Session

// measure runs one cell with a recorder attached when recording or live
// telemetry is on.
func (r *recording) measure(cell string) *obs.Recorder {
	if !r.on && !tel.Enabled() {
		return nil
	}
	c := obs.New(obs.Options{Trace: r.on, Metrics: true})
	tel.StartRun(cell)
	tel.Attach(c)
	if r.on {
		r.lastRec, r.lastCell = c, cell
	}
	return c
}

func main() {
	table2 := flag.Bool("table2", false, "reproduce Table II")
	fig2 := flag.Bool("fig2", false, "reproduce Fig. 2")
	nFlag := flag.Int("n", 64, "cubic problem size per dimension")
	gpusFlag := flag.String("gpus", "12,24,48,96,192,384,768,1536", "GPU counts for -table2 (multiples of 6)")
	fig2GPUs := flag.Int("fig2gpus", 12, "GPU count for the -fig2 sweep")
	traceFlag := flag.String("trace", "", "write a Chrome-trace JSON of the last measured cell to this file")
	metricsFlag := flag.Bool("metrics", false, "print the metrics report of the last measured cell")
	tf := telemetry.RegisterFlags(nil)
	flag.Parse()

	var err error
	if tel, err = tf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "accuracy:", err)
		os.Exit(1)
	}
	if tel.Enabled() && tel.Addr() != "" {
		fmt.Printf("# telemetry: serving http://%s\n", tel.Addr())
	}
	if !*table2 && !*fig2 {
		*table2, *fig2 = true, true
	}
	rec.on = *traceFlag != "" || *metricsFlag

	n := [3]int{*nFlag, *nFlag, *nFlag}
	if *table2 {
		runTable2(n, *gpusFlag)
	}
	if *fig2 {
		runFig2(n, *fig2GPUs)
	}

	if *metricsFlag && rec.lastRec != nil {
		fmt.Printf("\n# metrics report — %s\n", rec.lastCell)
		rec.lastRec.WriteReport(os.Stdout)
	}
	if *traceFlag != "" && rec.lastRec != nil {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "accuracy:", err)
			os.Exit(1)
		}
		if err := rec.lastRec.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "accuracy:", err)
			os.Exit(1)
		}
		fmt.Printf("# trace written: %s (%s)\n", *traceFlag, rec.lastCell)
	}
	if tel.Enabled() {
		fmt.Println(tel.Summary())
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "accuracy: telemetry:", err)
			os.Exit(1)
		}
	}
}

func runTable2(n [3]int, gpus string) {
	fmt.Printf("# Table II — relative FFT error ‖x − IFFT(FFT(x))‖/‖x‖, %d^3 problem\n", n[0])
	fmt.Printf("%8s%14s%14s%14s\n", "GPUs", "FP64", "FP32", "FP64->FP32")
	for _, gs := range strings.Split(gpus, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(gs))
		if err != nil || g%6 != 0 {
			fmt.Fprintf(os.Stderr, "accuracy: skipping invalid GPU count %q\n", gs)
			continue
		}
		cfg := netsim.Summit(g / 6)
		e64 := core.MeasureWith[complex128](rec.measure(fmt.Sprintf("fp64 @ %d GPUs", g)),
			cfg, n, core.Options{Backend: core.BackendAlltoallv}, 0, true).RelErr
		e32 := core.MeasureWith[complex64](rec.measure(fmt.Sprintf("fp32 @ %d GPUs", g)),
			cfg, n, core.Options{Backend: core.BackendAlltoallv}, 0, true).RelErr
		eMP := core.MeasureWith[complex128](rec.measure(fmt.Sprintf("fp64-32 @ %d GPUs", g)),
			cfg, n, core.Options{
				Backend: core.BackendCompressed, Method: compress.Cast32{},
			}, 0, true).RelErr
		fmt.Printf("%8d%14.2e%14.2e%14.2e\n", g, e64, e32, eMP)
	}
}

func runFig2(n [3]int, gpus int) {
	if gpus%6 != 0 {
		fmt.Fprintln(os.Stderr, "accuracy: -fig2gpus must be a multiple of 6")
		os.Exit(1)
	}
	cfg := netsim.Summit(gpus / 6)
	fmt.Printf("\n# Fig. 2 — accuracy vs bits in the communicated values, %d^3 problem, %d GPUs\n", n[0], gpus)
	fmt.Printf("# (bits = 1 sign + 11 exponent + M mantissa; theoretical speedup = 64/bits)\n")
	fmt.Printf("%8s%10s%14s%14s\n", "bits", "mantissa", "rel.err", "speedup")
	for m := 52; m >= 4; m -= 4 {
		method := compress.Trim{M: uint(m)}
		r := core.MeasureWith[complex128](rec.measure(fmt.Sprintf("trim-%d @ %d GPUs", m, gpus)),
			cfg, n, core.Options{
				Backend: core.BackendCompressed, Method: method,
			}, 0, true)
		fmt.Printf("%8d%10d%14.2e%14.2f\n", method.BitsPerValue(), m, r.RelErr, 64/float64(method.BitsPerValue()))
	}
	e64 := core.MeasureWith[complex128](rec.measure(fmt.Sprintf("fp64 @ %d GPUs", gpus)),
		cfg, n, core.Options{Backend: core.BackendAlltoallv}, 0, true).RelErr
	e32 := core.MeasureWith[complex64](rec.measure(fmt.Sprintf("fp32 @ %d GPUs", gpus)),
		cfg, n, core.Options{Backend: core.BackendAlltoallv}, 0, true).RelErr
	eMP := core.MeasureWith[complex128](rec.measure(fmt.Sprintf("fp64-32 @ %d GPUs", gpus)),
		cfg, n, core.Options{
			Backend: core.BackendCompressed, Method: compress.Cast32{},
		}, 0, true).RelErr
	fmt.Printf("# references: FP64 %.2e | FP32 (full pipeline) %.2e | MP 64/32 %.2e\n", e64, e32, eMP)
}

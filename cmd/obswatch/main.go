// Command obswatch is the terminal companion of the live-telemetry
// stack (docs/OBSERVABILITY.md): it attaches to a soak started with
// -serve and renders a compact live summary, lints OpenMetrics
// expositions, and replays JSONL event logs offline.
//
// Usage:
//
//	obswatch -addr 127.0.0.1:9090 [-interval 2s] [-once]
//	obswatch -lint metrics.om
//	obswatch -replay events.jsonl [-slo slo.json]
//
// Live mode polls /slo and /metrics of a running bench or chaos soak
// (any tool started with -serve) and prints, per poll: the SLO summary
// line, one row per objective, and the headline fault/heal counters.
// -lint parses a scraped exposition with the same strict parser the
// tests use and fails loudly on format violations. -replay feeds a
// recorded event stream through a fresh SLO engine, reproducing the
// breach verdicts the live run saw.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/obs/slo"
)

func main() {
	addr := flag.String("addr", "", "attach to a live -serve endpoint (host:port)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval for -addr mode")
	once := flag.Bool("once", false, "with -addr: poll once and exit")
	lint := flag.String("lint", "", "lint an OpenMetrics exposition file and exit")
	replay := flag.String("replay", "", "replay a JSONL event log offline and exit")
	sloFlag := flag.String("slo", "", "with -replay: SLO config to evaluate the stream against")
	flag.Parse()

	var err error
	switch {
	case *lint != "":
		err = runLint(*lint)
	case *replay != "":
		err = runReplay(*replay, *sloFlag)
	case *addr != "":
		err = runLive(*addr, *interval, *once)
	default:
		fmt.Fprintln(os.Stderr, "obswatch: one of -addr, -lint, -replay is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obswatch:", err)
		os.Exit(1)
	}
}

// runLint validates an exposition file with the strict OpenMetrics
// subset parser (TYPE-before-samples, contiguous families, suffix
// rules, no duplicate series, final # EOF).
func runLint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	samples, err := obs.ParseOpenMetrics(data)
	if err != nil {
		return fmt.Errorf("lint %s: %w", path, err)
	}
	fams := map[string]bool{}
	for _, s := range samples {
		fams[familyOf(s.Name)] = true
	}
	fmt.Printf("obswatch: %s is valid OpenMetrics: %d samples, %d families\n",
		path, len(samples), len(fams))
	return nil
}

// familyOf strips the sample suffixes the parser admits, recovering the
// family name for counting.
func familyOf(name string) string {
	for _, suf := range []string{"_total", "_created", "_count", "_sum", "_bucket"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// runReplay feeds a recorded JSONL event stream through a fresh SLO
// engine (when a config is given) and prints the stream's shape and the
// resulting verdicts — the offline reproduction of what the live run's
// /slo endpoint reported.
func runReplay(path, sloPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var eng *slo.Engine
	// Breach events re-derived by the replay engine are emitted into
	// this log (and counted), mirroring the live wiring.
	log := obs.NewEventLog(1)
	if sloPath != "" {
		cfg, err := slo.LoadConfig(sloPath)
		if err != nil {
			return err
		}
		eng = slo.New(cfg, log)
	}

	counts := map[string]int64{}
	var total, bad int64
	var runs int
	var tMax float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			bad++
			continue
		}
		total++
		counts[ev.Kind]++
		if ev.Kind == obs.EventRun {
			runs++
		}
		if ev.T > tMax {
			tMax = ev.T
		}
		eng.ObserveEvent(ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	fmt.Printf("replay %s: %d events, %d runs, virtual span %.3gs\n", path, total, runs, tMax)
	if bad > 0 {
		fmt.Printf("  %d malformed lines skipped\n", bad)
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, counts[k])
	}
	if eng != nil {
		fmt.Println(eng.Summary())
		printObjectives(eng.Status())
		if eng.TotalBreaches() > 0 {
			return fmt.Errorf("replay detected %d SLO breaches", eng.TotalBreaches())
		}
	}
	return nil
}

// runLive polls a -serve endpoint and renders the SLO table plus the
// headline counters each interval.
func runLive(addr string, interval time.Duration, once bool) error {
	base := "http://" + addr
	for {
		var resp serve.SLOResponse
		if err := getJSON(base+"/slo", &resp); err != nil {
			return err
		}
		samples, err := getMetrics(base + "/metrics")
		if err != nil {
			return err
		}
		fmt.Printf("-- %s  %s\n", addr, resp.Summary)
		printObjectives(resp.Objectives)
		printCounters(samples)
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

func printObjectives(sts []slo.Status) {
	if len(sts) == 0 {
		return
	}
	fmt.Printf("  %-24s %-10s %8s %10s %10s %10s\n",
		"objective", "kind", "state", "burn", "worst", "bad/seen")
	for _, s := range sts {
		state := "ok"
		if s.Breached {
			state = "BREACH"
		}
		fmt.Printf("  %-24s %-10s %8s %10.2f %10.2f %6d/%d\n",
			s.Name, s.Kind, state, s.Burn, s.WorstBurn, s.CumBad, s.CumSamples)
	}
}

// printCounters surfaces the headline fault/heal families of a scrape.
func printCounters(samples []obs.OMSample) {
	var parts []string
	for _, name := range []string{
		"fft_fault_drops_total", "fft_fault_retries_total", "fft_fault_crashes_total",
		"fft_fault_silent_corrupt_total", "fft_exchange_repairs_total",
		"fft_exchange_fallback_peers_total", "fft_slo_breach_total",
	} {
		var sum float64
		found := false
		for _, s := range samples {
			if s.Name == name {
				sum += s.Value
				found = true
			}
		}
		if found && sum > 0 {
			short := strings.TrimSuffix(strings.TrimPrefix(name, "fft_"), "_total")
			parts = append(parts, fmt.Sprintf("%s=%g", short, sum))
		}
	}
	if len(parts) > 0 {
		fmt.Printf("  %s\n", strings.Join(parts, " "))
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func getMetrics(url string) ([]obs.OMSample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseOpenMetrics(data)
}

// Command obswatch is the terminal companion of the live-telemetry
// stack (docs/OBSERVABILITY.md): it attaches to a soak started with
// -serve and renders a compact live summary, lints OpenMetrics
// expositions, and replays JSONL event logs offline.
//
// Usage:
//
//	obswatch -addr 127.0.0.1:9090 [-interval 2s] [-once]
//	obswatch -lint metrics.om
//	obswatch -replay events.jsonl [-slo slo.json]
//
// Live mode polls /slo and /metrics of a running bench or chaos soak
// (any tool started with -serve) and prints, per poll: the SLO summary
// line, one row per objective, and the headline fault/heal counters.
// -lint parses a scraped exposition with the same strict parser the
// tests use and fails loudly on format violations. -replay feeds a
// recorded event stream through a fresh SLO engine and error tracker,
// reproducing the breach and errtrack verdicts the live run saw; it
// also verifies stream integrity (sequence numbers contiguous from 1,
// the run_end marker present and last, no malformed or cut lines, and
// recovery-protocol sequencing: every resume names a previously
// committed checkpoint epoch or -1) and exits non-zero with a
// diagnostic when the stream was truncated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/errtrack"
	"repro/internal/obs/serve"
	"repro/internal/obs/slo"
	recov "repro/internal/recover"
)

func main() {
	addr := flag.String("addr", "", "attach to a live -serve endpoint (host:port)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval for -addr mode")
	once := flag.Bool("once", false, "with -addr: poll once and exit")
	lint := flag.String("lint", "", "lint an OpenMetrics exposition file and exit")
	replay := flag.String("replay", "", "replay a JSONL event log offline and exit")
	sloFlag := flag.String("slo", "", "with -replay: SLO config to evaluate the stream against")
	flag.Parse()

	var err error
	switch {
	case *lint != "":
		err = runLint(*lint)
	case *replay != "":
		err = runReplay(*replay, *sloFlag)
	case *addr != "":
		err = runLive(*addr, *interval, *once)
	default:
		fmt.Fprintln(os.Stderr, "obswatch: one of -addr, -lint, -replay is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obswatch:", err)
		os.Exit(1)
	}
}

// runLint validates an exposition file with the strict OpenMetrics
// subset parser (TYPE-before-samples, contiguous families, suffix
// rules, no duplicate series, final # EOF).
func runLint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	samples, err := obs.ParseOpenMetrics(data)
	if err != nil {
		return fmt.Errorf("lint %s: %w", path, err)
	}
	fams := map[string]bool{}
	for _, s := range samples {
		fams[familyOf(s.Name)] = true
	}
	fmt.Printf("obswatch: %s is valid OpenMetrics: %d samples, %d families\n",
		path, len(samples), len(fams))
	return nil
}

// familyOf strips the sample suffixes the parser admits, recovering the
// family name for counting.
func familyOf(name string) string {
	for _, suf := range []string{"_total", "_created", "_count", "_sum", "_bucket"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// runReplay feeds a recorded JSONL event stream through a fresh SLO
// engine (when a config is given) and error tracker, printing the
// stream's shape and the resulting verdicts — the offline reproduction
// of what the live run's /slo and /errtrack endpoints reported. It also
// checks the stream's integrity: every event carries a sequence number
// stamped at emit time and Session.Close appends a run_end marker, so a
// truncated, partially flushed, or lossy copy of the log is detectable
// rather than silently replaying as a shorter healthy run.
func runReplay(path, sloPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var eng *slo.Engine
	// Breach events re-derived by the replay engine are emitted into
	// this log (and counted), mirroring the live wiring.
	log := obs.NewEventLog(1)
	if sloPath != "" {
		cfg, err := slo.LoadConfig(sloPath)
		if err != nil {
			return err
		}
		eng = slo.New(cfg, log)
	}
	trk := errtrack.New()

	counts := map[string]int64{}
	var total, bad int64
	var runs int
	var tMax float64
	// Integrity state: seqs is set once any event carries a sequence
	// number (streams recorded before sequencing replay without the
	// checks); expect is the next sequence number a gapless stream emits.
	var integrity []string
	var seqs bool
	var expect, gaps int64 = 1, 0
	var firstGap string
	var last obs.Event
	// Recovery-protocol sequencing: commits register epochs; a resume
	// naming an epoch that was never committed means the run resumed from
	// a cut the store could not have held (a torn or lost checkpoint).
	committed := map[int]bool{}
	var resumeBad int
	var firstResumeBad string
	rd := bufio.NewReaderSize(f, 1<<20)
	for {
		line, rerr := rd.ReadString('\n')
		if rerr != nil && rerr != io.EOF {
			return rerr
		}
		if s := strings.TrimSpace(line); s != "" {
			if !strings.HasSuffix(line, "\n") {
				integrity = append(integrity, "last line has no trailing newline (write was cut mid-record)")
			}
			var ev obs.Event
			if err := json.Unmarshal([]byte(s), &ev); err != nil {
				bad++
			} else {
				total++
				counts[ev.Kind]++
				if ev.Kind == obs.EventRun {
					runs++
				}
				if ev.T > tMax {
					tMax = ev.T
				}
				if ev.Seq > 0 {
					seqs = true
					if ev.Seq != expect {
						gaps++
						if firstGap == "" {
							firstGap = fmt.Sprintf("event %d follows %d", ev.Seq, expect-1)
						}
					}
					expect = ev.Seq + 1
				}
				if ev.Kind == obs.EventRecovery {
					switch ev.Label {
					case recov.LabelCommit:
						committed[int(ev.Value)] = true
					case recov.LabelResume:
						// Value -1 is a legal from-scratch respawn (no cut
						// had been committed when the crash hit).
						if epoch := int(ev.Value); epoch >= 0 && !committed[epoch] {
							resumeBad++
							if firstResumeBad == "" {
								firstResumeBad = fmt.Sprintf("resume at t=%.3gs names epoch %d", ev.T, epoch)
							}
						}
					}
				}
				last = ev
				eng.ObserveEvent(ev)
				trk.Observe(ev)
			}
		}
		if rerr == io.EOF {
			break
		}
	}
	if bad > 0 {
		integrity = append(integrity, fmt.Sprintf("%d malformed lines", bad))
	}
	if gaps > 0 {
		integrity = append(integrity, fmt.Sprintf("%d sequence gaps (first: %s) — events were lost", gaps, firstGap))
	}
	if resumeBad > 0 {
		integrity = append(integrity, fmt.Sprintf("%d resume(s) without a preceding committed checkpoint (first: %s)", resumeBad, firstResumeBad))
	}
	if seqs {
		switch {
		case last.Kind != obs.EventEnd:
			integrity = append(integrity, "stream ends without a run_end marker — the run was cut before Close")
		case last.Value != float64(last.Seq):
			integrity = append(integrity, fmt.Sprintf("run_end marker claims %g events but the stream ends at %d", last.Value, last.Seq))
		}
	}

	fmt.Printf("replay %s: %d events, %d runs, virtual span %.3gs\n", path, total, runs, tMax)
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, counts[k])
	}
	var failures []string
	if len(integrity) > 0 {
		for _, msg := range integrity {
			fmt.Printf("  INTEGRITY: %s\n", msg)
		}
		failures = append(failures, fmt.Sprintf("stream integrity: %s", strings.Join(integrity, "; ")))
	}
	if rep := trk.Snapshot(); len(rep.Cells) > 0 {
		fmt.Println(rep.Verdict())
		if over := rep.OverBudget(); len(over) > 0 {
			failures = append(failures, fmt.Sprintf("%d stages over error budget", len(over)))
		}
	}
	if eng != nil {
		fmt.Println(eng.Summary())
		printObjectives(eng.Status())
		if n := eng.TotalBreaches(); n > 0 {
			failures = append(failures, fmt.Sprintf("%d SLO breaches", n))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("replay detected %s", strings.Join(failures, "; "))
	}
	return nil
}

// runLive polls a -serve endpoint and renders the SLO table plus the
// headline counters each interval.
func runLive(addr string, interval time.Duration, once bool) error {
	base := "http://" + addr
	for {
		var resp serve.SLOResponse
		if err := getJSON(base+"/slo", &resp); err != nil {
			return err
		}
		samples, err := getMetrics(base + "/metrics")
		if err != nil {
			return err
		}
		fmt.Printf("-- %s  %s\n", addr, resp.Summary)
		printObjectives(resp.Objectives)
		printCounters(samples)
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

func printObjectives(sts []slo.Status) {
	if len(sts) == 0 {
		return
	}
	fmt.Printf("  %-24s %-10s %8s %10s %10s %10s\n",
		"objective", "kind", "state", "burn", "worst", "bad/seen")
	for _, s := range sts {
		state := "ok"
		if s.Breached {
			state = "BREACH"
		}
		fmt.Printf("  %-24s %-10s %8s %10.2f %10.2f %6d/%d\n",
			s.Name, s.Kind, state, s.Burn, s.WorstBurn, s.CumBad, s.CumSamples)
	}
}

// printCounters surfaces the headline fault/heal families of a scrape.
func printCounters(samples []obs.OMSample) {
	var parts []string
	for _, name := range []string{
		"fft_fault_drops_total", "fft_fault_retries_total", "fft_fault_crashes_total",
		"fft_fault_silent_corrupt_total", "fft_exchange_repairs_total",
		"fft_exchange_fallback_peers_total", "fft_exchange_repromotions_total",
		"fft_recovery_checkpoints_total", "fft_recovery_rollbacks_total",
		"fft_recovery_restarts_total", "fft_slo_breach_total",
	} {
		var sum float64
		found := false
		for _, s := range samples {
			if s.Name == name {
				sum += s.Value
				found = true
			}
		}
		if found && sum > 0 {
			short := strings.TrimSuffix(strings.TrimPrefix(name, "fft_"), "_total")
			parts = append(parts, fmt.Sprintf("%s=%g", short, sum))
		}
	}
	if len(parts) > 0 {
		fmt.Printf("  %s\n", strings.Join(parts, " "))
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func getMetrics(url string) ([]obs.OMSample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseOpenMetrics(data)
}

// Command sweep regenerates every experiment of EXPERIMENTS.md in one
// run, writing one file per table/figure into an output directory.
//
//	go run ./cmd/sweep [-out results] [-quick] [-trace DIR] [-metrics]
//
// -quick caps the GPU counts at 96 and shrinks problems so the whole
// sweep finishes in well under a minute (CI mode); the default runs the
// full 12…1536-GPU sweeps. -metrics passes -metrics to every driver
// that supports it, so each output file ends with the phase/metrics
// report of its last cell; -trace DIR collects one Chrome-trace JSON
// per job (<dir>/<job>.trace.json), ready for cmd/tracetool; -errtrack
// DIR collects one error-provenance report per job
// (<dir>/<job>.errtrack.json), ready for cmd/errmap -artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

type job struct {
	file string
	args []string
	// observable marks drivers that accept -trace/-metrics; tunable the
	// ones that accept -autotune (the two bench drivers).
	observable bool
	tunable    bool
}

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "small, fast configuration")
	traceDir := flag.String("trace", "", "collect per-job Chrome traces into this directory")
	errtrackDir := flag.String("errtrack", "", "collect per-job error-provenance reports into this directory")
	metrics := flag.Bool("metrics", false, "append each driver's metrics report to its output file")
	autotune := flag.Bool("autotune", false, "add the autotuned configuration to the fig3/fig4 jobs (docs/TUNING.md)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	for _, dir := range []string{*traceDir, *errtrackDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}

	gpus := "12,24,48,96,192,384,768,1536"
	fig3GPUs := "6,12,24,48,96,192,384,768,1536"
	n, sim, t2n, f2n := "64", "1024", "128", "64"
	iters := "2"
	ablGPUs := "96"
	if *quick {
		gpus = "12,24,48,96"
		fig3GPUs = "6,12,24,48,96"
		n, sim, t2n, f2n = "32", "256", "32", "32"
		iters = "1"
		ablGPUs = "24"
	}

	jobs := []job{
		{"table1.txt", []string{"run", "./cmd/precisions"}, false, false},
		{"fig3.txt", []string{"run", "./cmd/alltoallbench", "-gpus", fig3GPUs, "-iters", iters}, true, true},
		{"fig4.txt", []string{"run", "./cmd/fftbench", "-n", n, "-sim", sim, "-gpus", gpus, "-iters", "1"}, true, true},
		{"table2.txt", []string{"run", "./cmd/accuracy", "-table2", "-n", t2n, "-gpus", gpus}, true, false},
		{"fig2.txt", []string{"run", "./cmd/accuracy", "-fig2", "-n", f2n, "-fig2gpus", "12"}, true, false},
		{"ablation.txt", []string{"run", "./cmd/ablation", "-gpus", ablGPUs}, true, false},
	}
	for _, j := range jobs {
		args := j.args
		name := strings.TrimSuffix(j.file, filepath.Ext(j.file))
		if j.tunable && *autotune {
			args = append(append([]string(nil), args...), "-autotune")
		}
		if j.observable {
			if *metrics {
				args = append(append([]string(nil), args...), "-metrics")
			}
			if *traceDir != "" {
				args = append(append([]string(nil), args...),
					"-trace", filepath.Join(*traceDir, name+".trace.json"))
			}
		}
		// Every driver accepts -errtrack (precisions writes the
		// theoretical-bounds-only report), so no observable gate here.
		if *errtrackDir != "" {
			args = append(append([]string(nil), args...),
				"-errtrack", filepath.Join(*errtrackDir, name+".errtrack.json"))
		}
		start := time.Now()
		fmt.Printf("sweep: %-12s ... ", j.file)
		cmd := exec.Command("go", args...)
		outBytes, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Printf("FAILED (%v)\n%s", err, outBytes)
			os.Exit(1)
		}
		path := filepath.Join(*out, j.file)
		if err := os.WriteFile(path, outBytes, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("done in %.1fs → %s\n", time.Since(start).Seconds(), path)
	}
}

// Command heffte is the general driver of the distributed approximate
// 3-D FFT: it runs one forward (and optionally inverse) transform on the
// simulated machine with a chosen backend/compression and reports time,
// Gflop/s, accuracy, and traffic.
//
// Usage:
//
//	go run ./cmd/heffte [-n 64] [-gpus 24] [-backend osc+compression]
//	                    [-method fp32|fp16|bf16|trim:M|block:B|lossless|none]
//	                    [-etol 1e-6] [-sim 1] [-iters 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

func parseMethod(s string) (compress.Method, error) {
	switch {
	case s == "" || s == "none":
		return compress.None{}, nil
	case s == "fp32":
		return compress.Cast32{}, nil
	case s == "fp16":
		return compress.Cast16{}, nil
	case s == "sfp16":
		return compress.Scaled{Inner: compress.Cast16{}}, nil
	case s == "bf16":
		return compress.CastBF16{}, nil
	case s == "lossless":
		return compress.Lossless{}, nil
	case strings.HasPrefix(s, "trim:"):
		m, err := strconv.Atoi(s[len("trim:"):])
		if err != nil || m < 0 || m > 52 {
			return nil, fmt.Errorf("bad trim width %q", s)
		}
		return compress.Trim{M: uint(m)}, nil
	case strings.HasPrefix(s, "block:"):
		b, err := strconv.Atoi(s[len("block:"):])
		if err != nil || b < 1 || b > 30 {
			return nil, fmt.Errorf("bad block budget %q", s)
		}
		return compress.Block{Bits: uint(b)}, nil
	}
	return nil, fmt.Errorf("unknown method %q", s)
}

func main() {
	nFlag := flag.Int("n", 64, "cubic problem size per dimension")
	gpus := flag.Int("gpus", 24, "GPU count (multiple of 6)")
	backend := flag.String("backend", "osc+compression", "alltoallv | osc | osc+compression")
	methodFlag := flag.String("method", "fp32", "compression method (compressed backend)")
	etol := flag.Float64("etol", 0, "error tolerance e_tol (overrides -method when > 0)")
	simFlag := flag.Int("sim", 0, "simulated problem size per dimension (0 = same as -n)")
	iters := flag.Int("iters", 2, "measured iterations")
	fp32 := flag.Bool("fp32", false, "run the full FP32 pipeline instead of FP64")
	traceFlag := flag.String("trace", "", "write a Chrome-trace JSON of the run to this file")
	metricsFlag := flag.Bool("metrics", false, "print the phase-breakdown/metrics report")
	parallelFlag := flag.Bool("parallel", false, "run the simulator's parallel engine (bit-identical results; docs/DETERMINISM.md)")
	tf := telemetry.RegisterFlags(nil)
	flag.Parse()

	tel, err := tf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "heffte:", err)
		os.Exit(1)
	}
	if tel.Enabled() && tel.Addr() != "" {
		fmt.Printf("telemetry      : serving http://%s\n", tel.Addr())
	}

	if *gpus%6 != 0 {
		fmt.Fprintln(os.Stderr, "heffte: -gpus must be a multiple of 6")
		os.Exit(1)
	}
	n := [3]int{*nFlag, *nFlag, *nFlag}
	opts := core.Options{}
	switch *backend {
	case "alltoallv":
		opts.Backend = core.BackendAlltoallv
	case "osc":
		opts.Backend = core.BackendOSC
	case "osc+compression":
		opts.Backend = core.BackendCompressed
	default:
		fmt.Fprintf(os.Stderr, "heffte: unknown backend %q\n", *backend)
		os.Exit(1)
	}
	if opts.Backend == core.BackendCompressed {
		if *etol > 0 {
			opts.Tolerance = *etol
		} else {
			m, err := parseMethod(*methodFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "heffte:", err)
				os.Exit(1)
			}
			opts.Method = m
		}
	}
	if *simFlag > 0 {
		if *simFlag%*nFlag != 0 {
			fmt.Fprintln(os.Stderr, "heffte: -sim must be a multiple of -n")
			os.Exit(1)
		}
		opts.SimScale = *simFlag / *nFlag
	}

	cfg := netsim.Summit(*gpus / 6)
	cfg.Parallel = *parallelFlag
	rec := obs.New(obs.Options{Trace: *traceFlag != "", Metrics: true})
	tel.StartRun(fmt.Sprintf("%s/%dgpus", *backend, *gpus))
	tel.Attach(rec)
	var r core.Result
	if *fp32 {
		if opts.Backend == core.BackendCompressed {
			fmt.Fprintln(os.Stderr, "heffte: the compressed backend requires the FP64 pipeline")
			os.Exit(1)
		}
		r = core.MeasureWith[complex64](rec, cfg, n, opts, *iters, true)
	} else {
		r = core.MeasureWith[complex128](rec, cfg, n, opts, *iters, true)
	}

	simN := *nFlag
	if opts.SimScale > 1 {
		simN = *nFlag * opts.SimScale
	}
	fmt.Printf("problem        : %d^3 (timed as %d^3)\n", *nFlag, simN)
	fmt.Printf("GPUs           : %d (%d nodes)\n", *gpus, *gpus/6)
	fmt.Printf("backend        : %s\n", *backend)
	if opts.Backend == core.BackendCompressed {
		m := opts.Method
		if m == nil {
			m = compress.FromTolerance(opts.Tolerance)
		}
		fmt.Printf("compression    : %s (nominal rate %.2fx)\n", m.Name(), m.Ratio())
		// The achieved rate comes from the run's metrics: raw vs wire
		// bytes per labelled reshape (fwd0..3 in ring order).
		if stats := rec.Metrics().CompressionStats(); len(stats) > 0 {
			var raw, wire int64
			fmt.Printf("achieved rate  :")
			for _, s := range stats {
				fmt.Printf(" %s %.2fx", s.Label, s.Ratio())
				raw += s.RawBytes
				wire += s.WireBytes
			}
			if wire > 0 {
				fmt.Printf(" | overall %.2fx", float64(raw)/float64(wire))
			}
			fmt.Println()
		}
	}
	fmt.Printf("forward time   : %.3f ms\n", r.ForwardTime*1e3)
	fmt.Printf("performance    : %.1f Gflop/s\n", r.Gflops)
	fmt.Printf("relative error : %.3e\n", r.RelErr)
	fmt.Printf("traffic        : %d msgs, %.1f MB inter-node, %.1f MB intra-node\n",
		r.Stats.Messages, float64(r.Stats.BytesInter)/1e6, float64(r.Stats.BytesIntra)/1e6)
	fmt.Printf("one-sided      : %d puts (%.1f MB), %d fences, %d flushes\n",
		r.Stats.Puts, float64(r.Stats.BytesPut)/1e6, r.Stats.Fences, r.Stats.Flushes)
	pr := r.Profile
	if pr.Total() > 0 {
		fmt.Printf("phase breakdown: exchange %.0f%%, fft %.0f%%, pack %.0f%%, unpack %.0f%%\n",
			100*pr.Exchange/pr.Total(), 100*pr.FFT/pr.Total(),
			100*pr.Pack/pr.Total(), 100*pr.Unpack/pr.Total())
	}
	if *metricsFlag {
		fmt.Println()
		rec.WriteReport(os.Stdout)
	}
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "heffte:", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "heffte:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written  : %s (chrome://tracing / ui.perfetto.dev)\n", *traceFlag)
	}
	if tel.Enabled() {
		fmt.Println(tel.Summary())
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "heffte: telemetry:", err)
			os.Exit(1)
		}
	}
}

// Lossless fallback — the extension sketched in the paper's conclusion:
// "this work can be easily extended to lossless compression so that we
// fall back to the classical 3-D FFT with a potential speedup". The
// byte-shuffle/RLE coder is bit-exact, so the transform equals the FP64
// reference; on compressible data the exchanged volume (and with it the
// virtual time) drops, while on incompressible data it stays ~1×.
//
//	go run ./examples/lossless
package main

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func main() {
	machine := netsim.Summit(2)
	n := [3]int{32, 32, 32}

	fmt.Println("lossless compression in the exchange (bit-exact fallback):")
	run(machine, n, "sparse field", fillSparse)
	run(machine, n, "random field", fillRandom)
}

func fillSparse(in []complex128, box grid.Box, o grid.Order) {
	// A few isolated sources on a zero background: highly compressible.
	for i := box.Lo[0]; i < box.Hi[0]; i++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			for k := box.Lo[2]; k < box.Hi[2]; k++ {
				v := 0.0
				if i%8 == 0 && j%8 == 0 && k%8 == 0 {
					v = 1
				}
				in[o.Index(box, [3]int{i, j, k})] = complex(v, 0)
			}
		}
	}
}

func fillRandom(in []complex128, box grid.Box, o grid.Order) {
	core.FillBox(in, box, o, 7)
}

func run(machine netsim.Config, n [3]int, label string, fill func([]complex128, grid.Box, grid.Order)) {
	var exact bool
	var t float64
	res := mpi.Run(machine, func(c *mpi.Comm) {
		ref := core.NewPlan[complex128](c, n, core.Options{Backend: core.BackendAlltoallv})
		pl := core.NewPlan[complex128](c, n, core.Options{
			Backend: core.BackendCompressed, Method: compress.Lossless{},
		})
		in := make([]complex128, pl.InBox().Count())
		fill(in, pl.InBox(), pl.InOrder())

		want := append([]complex128(nil), ref.Forward(in)...)
		t0 := c.Now()
		got := pl.Forward(in)
		dt := c.Now() - t0

		same := true
		for i := range want {
			if got[i] != want[i] {
				same = false
				break
			}
		}
		if c.Rank() == 0 {
			exact = same
			t = dt
		}
		// Only the first reshape's volume matters for the headline; the
		// stats below aggregate everything including the reference run.
		_ = math.Pi
	})
	status := "EXACT"
	if !exact {
		status = "MISMATCH"
	}
	fmt.Printf("  %-13s forward %.3f ms, result %s, total traffic %.1f MB\n",
		label+":", t*1e3, status,
		float64(res.Stats.BytesInter+res.Stats.BytesIntra+res.Stats.BytesLocal)/1e6)
}

// Quickstart: run a distributed 3-D FFT with lossy-compressed
// communication on the simulated GPU cluster, and check the round-trip
// error against the requested tolerance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func main() {
	// A 4-node Summit-like machine: 24 GPUs, one MPI rank per GPU.
	machine := netsim.Summit(4)
	n := [3]int{32, 32, 32}
	const etol = 1e-6 // user error tolerance of Algorithm 1

	mpi.Run(machine, func(c *mpi.Comm) {
		// Build the approximate-FFT plan: compression is picked from the
		// tolerance (1e-6 selects a 16-bit-mantissa trim, rate ~2.3x).
		plan := core.NewPlan[complex128](c, n, core.Options{
			Backend:   core.BackendCompressed,
			Tolerance: etol,
		})

		// Fill this rank's brick of the global field.
		in := make([]complex128, plan.InBox().Count())
		core.FillBox(in, plan.InBox(), grid.Natural, 42)

		// Forward, then inverse; both compress the reshape traffic.
		spectrum := append([]complex128(nil), plan.Forward(in)...)
		back := plan.Backward(spectrum)

		// Global relative error.
		var errSq, normSq float64
		for i := range in {
			d := back[i] - in[i]
			errSq += real(d)*real(d) + imag(d)*imag(d)
			errSq += 0 // (kept simple; see examples/poisson for a full solver)
			normSq += cmplx.Abs(in[i]) * cmplx.Abs(in[i])
		}
		errSq = c.AllreduceFloat64("sum", errSq)
		normSq = c.AllreduceFloat64("sum", normSq)
		relErr := math.Sqrt(errSq / normSq)

		if c.Rank() == 0 {
			fmt.Printf("grid %dx%dx%d on %d GPUs (%d nodes)\n", n[0], n[1], n[2], c.Size(), machine.Nodes)
			fmt.Printf("requested tolerance : %.1e\n", etol)
			fmt.Printf("round-trip rel. err : %.3e\n", relErr)
			fmt.Printf("virtual time        : %.3f ms\n", c.Now()*1e3)
			if relErr <= etol {
				fmt.Println("OK: error within the requested tolerance")
			} else {
				fmt.Println("WARNING: error above tolerance")
			}
		}
	})
}

// Heat equation — a pseudo-spectral time integrator: every step performs
// a forward and inverse 3-D FFT (with lossy-compressed exchanges), so a
// T-step run exercises the plan's cached windows 2·T·R times, the
// pattern §V-A's window caching exists for. The single-mode initial
// condition u₀ = sin(3x) has the exact solution e^{−9αt}·sin(3x), so the
// compression error's growth over many steps is measured directly.
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func main() {
	machine := netsim.Summit(2)
	n := [3]int{32, 32, 32}
	const (
		alpha = 0.05 // diffusivity
		dt    = 0.01 // time step
		steps = 50
	)

	for _, etol := range []float64{0, 1e-7} {
		var relErr, elapsed float64
		mpi.Run(machine, func(c *mpi.Comm) {
			opts := core.Options{Backend: core.BackendAlltoallv}
			label := "FP64 exchange"
			if etol > 0 {
				opts = core.Options{Backend: core.BackendCompressed, Tolerance: etol}
				label = fmt.Sprintf("compressed, e_tol=%.0e", etol)
			}
			_ = label
			plan := core.NewPlan[complex128](c, n, opts)
			box := plan.InBox()
			h := 2 * math.Pi / float64(n[0])

			u := make([]complex128, box.Count())
			idx := 0
			for k := box.Lo[2]; k < box.Hi[2]; k++ {
				for j := box.Lo[1]; j < box.Hi[1]; j++ {
					for i := box.Lo[0]; i < box.Hi[0]; i++ {
						u[idx] = complex(math.Sin(3*float64(i)*h), 0)
						idx++
					}
				}
			}

			// Precompute the per-step decay factors e^{−α|k|²·dt}.
			out := plan.OutBox()
			decay := make([]float64, out.Count())
			idx = 0
			for k := out.Lo[2]; k < out.Hi[2]; k++ {
				for j := out.Lo[1]; j < out.Hi[1]; j++ {
					for i := out.Lo[0]; i < out.Hi[0]; i++ {
						kx, ky, kz := wrap(i, n[0]), wrap(j, n[1]), wrap(k, n[2])
						k2 := float64(kx*kx + ky*ky + kz*kz)
						decay[idx] = math.Exp(-alpha * k2 * dt)
						idx++
					}
				}
			}

			t0 := c.Now()
			for step := 0; step < steps; step++ {
				spec := plan.Forward(u)
				for i := range spec {
					spec[i] *= complex(decay[i], 0)
				}
				copy(u, plan.Backward(spec))
			}
			dtWall := c.Now() - t0

			// Compare to the analytic solution at t = steps·dt.
			amp := math.Exp(-9 * alpha * dt * steps)
			var errSq, normSq float64
			idx = 0
			for k := box.Lo[2]; k < box.Hi[2]; k++ {
				for j := box.Lo[1]; j < box.Hi[1]; j++ {
					for i := box.Lo[0]; i < box.Hi[0]; i++ {
						want := amp * math.Sin(3*float64(i)*h)
						d := real(u[idx]) - want
						errSq += d * d
						normSq += want * want
						idx++
					}
				}
			}
			errSq = c.AllreduceFloat64("sum", errSq)
			normSq = c.AllreduceFloat64("sum", normSq)
			if c.Rank() == 0 {
				relErr = math.Sqrt(errSq / normSq)
				elapsed = dtWall
			}
		})
		label := "FP64 exchange          "
		if etol > 0 {
			label = fmt.Sprintf("compressed (e_tol=%.0e)", etol)
		}
		fmt.Printf("heat eq, %d steps, %s: rel.err vs analytic %.3e, %.2f ms virtual\n",
			steps, label, relErr, elapsed*1e3)
	}
	fmt.Println("(100 transforms per run reuse the same cached one-sided windows — §V-A)")
}

func wrap(i, n int) int {
	if i > n/2 {
		return i - n
	}
	return i
}

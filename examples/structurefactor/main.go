// Structure factor — a molecular-dynamics analysis kernel (the paper's
// introduction names MD among the FFT's driving applications): particles
// are binned onto a periodic mesh and S(k) = |ρ̂(k)|²/N is read off the
// distributed FFT of the density. A perfect crystal must produce Bragg
// peaks exactly at the reciprocal-lattice vectors and ~nothing between;
// the run checks both with the lossy-compressed exchange in place.
//
//	go run ./examples/structurefactor
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func main() {
	machine := netsim.Summit(2)
	n := [3]int{32, 32, 32}
	const spacing = 8 // simple cubic crystal: one particle every 8 cells

	var peak, background float64
	var nParticles int
	mpi.Run(machine, func(c *mpi.Comm) {
		plan := core.NewPlan[complex128](c, n, core.Options{
			Backend:   core.BackendCompressed,
			Tolerance: 1e-6,
		})
		box := plan.InBox()

		// Bin the crystal onto this rank's brick of the density mesh.
		rho := make([]complex128, box.Count())
		local := 0
		for i := box.Lo[0]; i < box.Hi[0]; i++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				for k := box.Lo[2]; k < box.Hi[2]; k++ {
					if i%spacing == 0 && j%spacing == 0 && k%spacing == 0 {
						rho[plan.InOrder().Index(box, [3]int{i, j, k})] = 1
						local++
					}
				}
			}
		}
		total := int(c.AllreduceFloat64("sum", float64(local)))

		spec := plan.Forward(rho)

		// S(k) at a Bragg peak (4,0,0 in mesh units: 32/8) and at an
		// off-lattice wavevector (1,0,0).
		out := plan.OutBox()
		sAt := func(kx, ky, kz int) float64 {
			if !out.Contains(kx, ky, kz) {
				return -1
			}
			v := spec[plan.OutOrder().Index(out, [3]int{kx, ky, kz})]
			return (real(v)*real(v) + imag(v)*imag(v)) / float64(total)
		}
		pk := c.AllreduceFloat64("max", sAt(n[0]/spacing, 0, 0))
		bg := c.AllreduceFloat64("max", sAt(1, 0, 0))
		if c.Rank() == 0 {
			peak, background, nParticles = pk, bg, total
		}
	})

	// A perfect crystal of N particles has S(G) = N at reciprocal
	// lattice vectors G.
	fmt.Printf("simple cubic crystal, %d particles on a %d³ mesh (12 GPUs)\n", nParticles, n[0])
	fmt.Printf("S(G) at Bragg peak (4,0,0): %.3f   (theory: N = %d)\n", peak, nParticles)
	fmt.Printf("S(k) off-lattice (1,0,0)  : %.2e (theory: 0)\n", background)
	if math.Abs(peak-float64(nParticles)) > 1e-3*float64(nParticles) {
		fmt.Println("WARNING: Bragg peak off theory")
	} else {
		fmt.Println("OK: Bragg peaks match theory under compressed communication")
	}
}

// Convolution: smooth a 3-D field with a periodic Gaussian filter using
// the convolution theorem — forward FFT, point-wise multiply by the
// filter's spectrum, inverse FFT — with lossy-compressed communication.
// Gaussians are eigen-like under smoothing, so the result is easy to
// validate: filtering a single Fourier mode must scale it by exactly the
// filter's transfer coefficient.
//
//	go run ./examples/convolution
package main

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func main() {
	machine := netsim.Summit(2)
	n := [3]int{32, 32, 32}
	const sigma = 0.35 // filter width (radians on the 2π-periodic box)

	mpi.Run(machine, func(c *mpi.Comm) {
		plan := core.NewPlan[complex128](c, n, core.Options{
			Backend: core.BackendCompressed,
			Method:  compress.Cast32{},
		})
		box := plan.InBox()
		h := 2 * math.Pi / float64(n[0])

		// Input: a superposition of two Fourier modes.
		const (
			m1 = 2 // mode (2, 1, 0)
			m2 = 5 // mode (5, 0, 3)
		)
		in := make([]complex128, box.Count())
		idx := 0
		for k := box.Lo[2]; k < box.Hi[2]; k++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				for i := box.Lo[0]; i < box.Hi[0]; i++ {
					x, y, z := float64(i)*h, float64(j)*h, float64(k)*h
					in[idx] = complex(
						math.Cos(m1*x+y)+0.5*math.Cos(m2*x+3*z), 0)
					idx++
				}
			}
		}

		// Forward; multiply by the Gaussian transfer function
		// exp(-σ²|k|²/2); inverse.
		spec := append([]complex128(nil), plan.Forward(in)...)
		out := plan.OutBox()
		idx = 0
		for k := out.Lo[2]; k < out.Hi[2]; k++ {
			for j := out.Lo[1]; j < out.Hi[1]; j++ {
				for i := out.Lo[0]; i < out.Hi[0]; i++ {
					kx, ky, kz := freq(i, n[0]), freq(j, n[1]), freq(k, n[2])
					k2 := float64(kx*kx + ky*ky + kz*kz)
					spec[idx] *= complex(math.Exp(-sigma*sigma*k2/2), 0)
					idx++
				}
			}
		}
		smooth := plan.Backward(spec)

		// Validate: each mode must be scaled by its own transfer factor.
		g1 := math.Exp(-sigma * sigma * (m1*m1 + 1) / 2)
		g2 := math.Exp(-sigma * sigma * (m2*m2 + 9) / 2)
		var maxErr float64
		idx = 0
		for k := box.Lo[2]; k < box.Hi[2]; k++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				for i := box.Lo[0]; i < box.Hi[0]; i++ {
					x, y, z := float64(i)*h, float64(j)*h, float64(k)*h
					want := g1*math.Cos(m1*x+y) + 0.5*g2*math.Cos(m2*x+3*z)
					if e := cmplx.Abs(smooth[idx] - complex(want, 0)); e > maxErr {
						maxErr = e
					}
					idx++
				}
			}
		}
		maxErr = c.AllreduceFloat64("max", maxErr)
		if c.Rank() == 0 {
			fmt.Printf("Gaussian smoothing (σ=%.2f) of a two-mode field on %d GPUs\n", sigma, c.Size())
			fmt.Printf("mode (2,1,0) damped to %.4f, mode (5,0,3) to %.6f\n", g1, g2)
			fmt.Printf("max abs deviation from analytic filter: %.3e (FP64→FP32 exchange)\n", maxErr)
			fmt.Printf("virtual time: %.3f ms\n", c.Now()*1e3)
		}
	})
}

func freq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

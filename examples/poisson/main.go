// Poisson-type spectral solver — Algorithm 2 of the paper: solve
//
//	−∇²u + u = f   on  Ω = [0, 2π)³, periodic
//
// with forward/inverse FFTs whose communication is lossy-compressed
// under a user error tolerance e_tol. The manufactured solution
// u = sin(x)·cos(2y)·sin(3z) gives f = 15·u exactly, so the numeric
// error is measured against the analytic u.
//
//	go run ./examples/poisson
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func main() {
	machine := netsim.Summit(2) // 12 GPUs
	n := [3]int{32, 32, 32}

	for _, etol := range []float64{0, 1e-4, 1e-8} {
		runSolve(machine, n, etol)
	}
}

func runSolve(machine netsim.Config, n [3]int, etol float64) {
	mpi.Run(machine, func(c *mpi.Comm) {
		opts := core.Options{Backend: core.BackendAlltoallv}
		if etol > 0 {
			opts = core.Options{Backend: core.BackendCompressed, Tolerance: etol}
		}
		plan := core.NewPlan[complex128](c, n, opts)
		box := plan.InBox()
		h := [3]float64{2 * math.Pi / float64(n[0]), 2 * math.Pi / float64(n[1]), 2 * math.Pi / float64(n[2])}

		// Step 1: sample f = 15·u at this rank's grid points.
		f := make([]complex128, box.Count())
		uExact := make([]float64, box.Count())
		idx := 0
		for k := box.Lo[2]; k < box.Hi[2]; k++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				for i := box.Lo[0]; i < box.Hi[0]; i++ {
					u := math.Sin(float64(i)*h[0]) * math.Cos(2*float64(j)*h[1]) * math.Sin(3*float64(k)*h[2])
					uExact[idx] = u
					f[idx] = complex(15*u, 0)
					idx++
				}
			}
		}

		// Step 2: ĝ = FFT(f, e_tol).
		g := append([]complex128(nil), plan.Forward(f)...)

		// Step 3: scale point-wise by the symbol 1/(1 + |k|²).
		out := plan.OutBox()
		idx = 0
		for k := out.Lo[2]; k < out.Hi[2]; k++ {
			for j := out.Lo[1]; j < out.Hi[1]; j++ {
				for i := out.Lo[0]; i < out.Hi[0]; i++ {
					kx, ky, kz := freq(i, n[0]), freq(j, n[1]), freq(k, n[2])
					g[idx] /= complex(1+float64(kx*kx+ky*ky+kz*kz), 0)
					idx++
				}
			}
		}

		// Step 4: u = IFFT(ĝ, e_tol).
		u := plan.Backward(g)

		// Compare with the analytic solution.
		var errSq, normSq float64
		for i := range u {
			d := real(u[i]) - uExact[i]
			errSq += d * d
			normSq += uExact[i] * uExact[i]
		}
		errSq = c.AllreduceFloat64("sum", errSq)
		normSq = c.AllreduceFloat64("sum", normSq)

		if c.Rank() == 0 {
			label := "exact FP64 communication"
			if etol > 0 {
				label = fmt.Sprintf("e_tol = %.0e (%s)", etol, plan.Method().Name())
			}
			fmt.Printf("−∇²u+u=f, %d³ grid, %d GPUs, %-34s rel.err = %.3e, t = %.2f ms\n",
				n[0], c.Size(), label, math.Sqrt(errSq/normSq), c.Now()*1e3)
		}
	})
}

// freq maps a DFT bin to its signed integer frequency.
func freq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

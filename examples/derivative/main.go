// Spectral derivative: compute ∂u/∂x of a periodic field by multiplying
// the spectrum with i·kx, comparing the compressed-communication FFT
// against the analytic derivative — and against the same computation in
// a full FP32 pipeline, reproducing the mixed-precision accuracy
// advantage on a calculus workload.
//
//	go run ./examples/derivative
package main

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func main() {
	machine := netsim.Summit(2)
	n := [3]int{32, 32, 32}

	errMP := derivativeError[complex128](machine, n, core.Options{
		Backend: core.BackendCompressed, Method: compress.Cast32{},
	})
	err32 := derivativeError[complex64](machine, n, core.Options{Backend: core.BackendAlltoallv})
	err64 := derivativeError[complex128](machine, n, core.Options{Backend: core.BackendAlltoallv})

	fmt.Printf("∂/∂x of sin(3x)cos(2y)cos(z) on a %d³ grid, 12 GPUs\n", n[0])
	fmt.Printf("FP64 pipeline                 : rel.err %.3e\n", err64)
	fmt.Printf("FP64 compute, FP32 exchange   : rel.err %.3e\n", errMP)
	fmt.Printf("FP32 pipeline                 : rel.err %.3e\n", err32)
	fmt.Printf("mixed precision is %.1fx more accurate than full FP32\n", err32/errMP)
}

func derivativeError[C fft.Complex](machine netsim.Config, n [3]int, opts core.Options) float64 {
	var rel float64
	mpi.Run(machine, func(c *mpi.Comm) {
		plan := core.NewPlan[C](c, n, opts)
		box := plan.InBox()
		h := 2 * math.Pi / float64(n[0])

		in := make([]C, box.Count())
		want := make([]float64, box.Count())
		idx := 0
		for k := box.Lo[2]; k < box.Hi[2]; k++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				for i := box.Lo[0]; i < box.Hi[0]; i++ {
					x, y, z := float64(i)*h, float64(j)*h, float64(k)*h
					in[idx] = cset[C](math.Sin(3*x) * math.Cos(2*y) * math.Cos(z))
					want[idx] = 3 * math.Cos(3*x) * math.Cos(2*y) * math.Cos(z)
					idx++
				}
			}
		}

		spec := append([]C(nil), plan.Forward(in)...)
		out := plan.OutBox()
		idx = 0
		for k := out.Lo[2]; k < out.Hi[2]; k++ {
			for j := out.Lo[1]; j < out.Hi[1]; j++ {
				for i := out.Lo[0]; i < out.Hi[0]; i++ {
					kx := freq(i, n[0])
					if 2*i == n[0] {
						kx = 0 // Nyquist mode of an odd derivative
					}
					spec[idx] *= cmul[C](0, float64(kx))
					idx++
				}
			}
		}
		du := plan.Backward(spec)

		var errSq, normSq float64
		for i := range du {
			d := float64(real(complex128(du[i]))) - want[i]
			errSq += d * d
			normSq += want[i] * want[i]
		}
		errSq = c.AllreduceFloat64("sum", errSq)
		normSq = c.AllreduceFloat64("sum", normSq)
		if c.Rank() == 0 {
			rel = math.Sqrt(errSq / normSq)
		}
	})
	return rel
}

func cset[C fft.Complex](re float64) C {
	var z C
	if _, ok := any(z).(complex64); ok {
		return C(complex(float32(re), 0))
	}
	return C(complex(re, 0))
}

func cmul[C fft.Complex](re, im float64) C {
	var z C
	if _, ok := any(z).(complex64); ok {
		return C(complex(float32(re), float32(im)))
	}
	return C(complex(re, im))
}

func freq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

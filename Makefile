# Convenience targets; the repo needs only the Go toolchain.

.PHONY: build test verify trace-demo bench benchdiff chaos chaos-race clean

build:
	go build ./...

test:
	go test ./...

# verify is the tier-1 recipe from ROADMAP.md: full build + tests, vet,
# and the race detector over the packages used from concurrent rank
# goroutines (the observability layer, the exchange backends, the mpi
# runtime, and the simulator engine itself).
verify:
	go build ./...
	go test ./...
	go vet ./...
	go test -race ./internal/obs/... ./internal/exchange/... ./internal/mpi/... ./internal/netsim/...
	go run ./cmd/chaos -seeds 8

# chaos sweeps randomized seeded fault plans (drop storms, corruption,
# duplicates, degraded NICs, rank crashes) across every exchange
# algorithm, asserting that each run completes bit-identically or fails
# with an explicit attributed diagnostic (docs/ROBUSTNESS.md). Any
# failure reproduces with `go run ./cmd/chaos -start <seed> -seeds 1 -v`.
chaos:
	go run ./cmd/chaos -seeds 60

# chaos-race soaks the same sweep under the race detector.
chaos-race:
	go run -race ./cmd/chaos -seeds 25

# trace-demo runs a small compressed strong-scaling cell and writes a
# Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev) plus
# the phase-breakdown/metrics report. Analyze the trace with
# `go run ./cmd/tracetool trace-demo.json`.
trace-demo:
	go run ./cmd/fftbench -n 64 -sim 64 -gpus 24 -configs fp64-32,fp64-16 \
		-iters 1 -trace trace-demo.json -metrics

# The committed bench baselines. Small deterministic configurations —
# all times are virtual, so the artifacts are bit-identical across
# machines and regenerating them only changes the JSON when the
# simulated performance actually changed.
BENCH_FFT_FLAGS = -n 32 -sim 64 -gpus 12,24 -iters 1 -configs fp64,fp32,fp64-32,fp64-16
BENCH_A2A_FLAGS = -msg 65536 -iters 1 -gpus 12,24 -algos linear,osc,osc-comp

# bench regenerates the committed baselines in place. Run it (and commit
# the result) when a performance change is intentional.
bench:
	go run ./cmd/fftbench $(BENCH_FFT_FLAGS) -json BENCH_fft.json
	go run ./cmd/alltoallbench $(BENCH_A2A_FLAGS) -json BENCH_alltoall.json

# benchdiff regenerates the artifacts from the current tree into a temp
# directory and gates them against the committed baselines (nonzero exit
# on >10% regression or a vanished configuration).
benchdiff:
	$(eval TMP := $(shell mktemp -d))
	go run ./cmd/fftbench $(BENCH_FFT_FLAGS) -json $(TMP)/fft.json > /dev/null
	go run ./cmd/alltoallbench $(BENCH_A2A_FLAGS) -json $(TMP)/alltoall.json > /dev/null
	go run ./cmd/benchdiff BENCH_fft.json $(TMP)/fft.json
	go run ./cmd/benchdiff BENCH_alltoall.json $(TMP)/alltoall.json
	rm -rf $(TMP)

clean:
	rm -f trace-demo.json

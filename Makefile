# Convenience targets; the repo needs only the Go toolchain.

.PHONY: build test lint verify verify-parallel trace-demo telemetry-demo errmap-demo tune-demo bench benchdiff chaos chaos-race chaos-recovery chaos-shrink fuzz clean

build:
	go build ./...

test:
	go test ./...

# verify is the tier-1 recipe from ROADMAP.md: full build + tests, vet,
# a shuffled-order test pass (no test may depend on package test order;
# the shuffle seed is echoed by the test binary on failure, rerun with
# go test -shuffle=<seed>), the race detector over every package (rank
# bodies execute truly concurrently when the parallel engine is on, so
# all of them must be race-clean), the fixed-seed determinism smoke
# proving the parallel engine bit-identical to the sequential one, and
# fixed-seed chaos sweeps — one per engine mode, plus one under the
# race detector.
verify:
	go build ./...
	go test ./...
	go test -shuffle=on ./...
	$(MAKE) lint
	go test -race ./...
	go test -run TestParallelEquivalenceSmoke ./internal/exchange/
	go run ./cmd/chaos -seeds 8
	go run ./cmd/chaos -seeds 8 -parallel
	go run -race ./cmd/chaos -seeds 8
	$(MAKE) chaos-recovery
	$(MAKE) chaos-shrink
	$(MAKE) fuzz
	$(MAKE) telemetry-demo
	$(MAKE) errmap-demo
	$(MAKE) tune-demo

# lint: formatting and static analysis. gofmt must report nothing,
# go vet must be clean, and staticcheck runs when installed (the repo
# must not require it — CI images without it still get the vet tier).
lint:
	@out=$$(gofmt -l . 2>/dev/null); if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; fi
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; go vet only"; \
	fi

# verify-parallel re-runs the tier-1 tests with NETSIM_PARALLEL=1, which
# forces every netsim run in the tree onto the parallel engine — the
# whole test suite doubles as a determinism suite because all its
# expectations were recorded against the sequential engine. The bench
# artifacts regenerated under -parallel must also diff clean against the
# committed sequential baselines (virtual times are bit-identical).
verify-parallel:
	NETSIM_PARALLEL=1 go test ./...
	NETSIM_PARALLEL=1 go test -race ./internal/obs/... ./internal/exchange/... ./internal/mpi/... ./internal/netsim/... ./internal/core/...
	$(eval TMP := $(shell mktemp -d))
	go run ./cmd/fftbench $(BENCH_FFT_FLAGS) -parallel -json $(TMP)/fft.json > /dev/null
	go run ./cmd/alltoallbench $(BENCH_A2A_FLAGS) -parallel -json $(TMP)/alltoall.json > /dev/null
	go run ./cmd/benchdiff BENCH_fft.json $(TMP)/fft.json
	go run ./cmd/benchdiff BENCH_alltoall.json $(TMP)/alltoall.json
	rm -rf $(TMP)

# chaos sweeps randomized seeded fault plans (drop storms, corruption,
# duplicates, degraded NICs, rank crashes) across every exchange
# algorithm, asserting that each run completes bit-identically or fails
# with an explicit attributed diagnostic (docs/ROBUSTNESS.md). Any
# failure reproduces with `go run ./cmd/chaos -start <seed> -seeds 1 -v`.
chaos:
	go run ./cmd/chaos -seeds 60

# chaos-race soaks the same sweep under the race detector, in both
# engine modes (the parallel engine runs rank bodies on real threads).
chaos-race:
	go run -race ./cmd/chaos -seeds 25
	go run -race ./cmd/chaos -seeds 25 -parallel

# chaos-recovery sweeps the crash-recovery workloads: the same seeded
# fault plans run under the recovery controller (epoch checkpoints,
# rollback/respawn on crash verdicts, with double-fault and
# restart-budget stratification per seed — docs/ROBUSTNESS.md), in both
# engine modes; seeds 1..20 hit all three crash paths (recover,
# unrecoverable, double fault). Part of `make verify`.
chaos-recovery:
	go run ./cmd/chaos -seeds 20 -workloads recover-osc,recover-comp
	go run ./cmd/chaos -seeds 20 -workloads recover-osc,recover-comp -parallel

# chaos-shrink sweeps the kill-permanent stratum: seeded permanent rank
# kills exhaust the respawn budget, and each cell must either shrink
# onto the survivors (Policy.Shrink) and finish bit-identically — the
# runner executes BOTH engines per seed and cross-checks them — or, on
# the Shrink-off seeds, give up with the typed *recov.UnrecoverableError
# (docs/ROBUSTNESS.md). Part of `make verify`.
chaos-shrink:
	go run ./cmd/chaos -seeds 20 -workloads kill-osc,kill-comp

# fuzz runs every native fuzz target for a short fixed budget — the
# snapshot frame decoder and round-trip (internal/recover), the hostile
# window-slot decoder and the shrink ledger remapper (internal/exchange),
# and the tune-plan loader (internal/tune). The patterns are anchored:
# `go test -fuzz` rejects a pattern matching more than one target.
# Part of `make verify`; corpus findings land in testdata/fuzz/ — commit
# them as regression seeds.
FUZZTIME = 5s
fuzz:
	go test -run '^$$' -fuzz '^FuzzSnapshotFrame$$' -fuzztime $(FUZZTIME) ./internal/recover/
	go test -run '^$$' -fuzz '^FuzzSnapshotFrameRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/recover/
	go test -run '^$$' -fuzz '^FuzzDecodeSlot$$' -fuzztime $(FUZZTIME) ./internal/exchange/
	go test -run '^$$' -fuzz '^FuzzRemapLedgerState$$' -fuzztime $(FUZZTIME) ./internal/exchange/
	go test -run '^$$' -fuzz '^FuzzLoadTunePlan$$' -fuzztime $(FUZZTIME) ./internal/tune/

# trace-demo runs a small compressed strong-scaling cell and writes a
# Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev) plus
# the phase-breakdown/metrics report. Analyze the trace with
# `go run ./cmd/tracetool trace-demo.json`.
trace-demo:
	go run ./cmd/fftbench -n 64 -sim 64 -gpus 24 -configs fp64-32,fp64-16 \
		-iters 1 -trace trace-demo.json -metrics

# telemetry-demo runs a short chaos soak with the full live-telemetry
# stack on (-serve on a free port, JSONL event log, SLO objectives from
# docs/slo.example.json, mid-sweep self-scrape of /metrics), then lints
# the scraped OpenMetrics exposition and replays the event stream
# offline — the replay re-derives the same SLO verdicts the live run
# saw and exits nonzero if the stream carried no breaches. Part of
# `make verify`.
telemetry-demo:
	$(eval TMP := $(shell mktemp -d))
	go run ./cmd/chaos -seeds 6 -serve 127.0.0.1:0 \
		-eventlog $(TMP)/events.jsonl -slo docs/slo.example.json \
		-scrape $(TMP)/metrics.om
	go run ./cmd/obswatch -lint $(TMP)/metrics.om
	go run ./cmd/obswatch -replay $(TMP)/events.jsonl
	! go run ./cmd/obswatch -replay $(TMP)/events.jsonl -slo docs/slo.example.json
	rm -rf $(TMP)
	@echo "telemetry-demo: scrape linted, stream replayed, breaches reproduced"

# errmap-demo runs a small lossy bench with the event log and the
# error-provenance artifact on, then renders the attribution ledger from
# both sources — the JSONL replay and the -errtrack artifact — and
# asserts they derive the identical errtrack verdict (the live/replay
# parity contract of docs/OBSERVABILITY.md). Part of `make verify`.
errmap-demo:
	$(eval TMP := $(shell mktemp -d))
	go run ./cmd/fftbench -n 32 -sim 64 -gpus 12 -configs fp64-32,fp64-16 -iters 1 \
		-eventlog $(TMP)/events.jsonl -errtrack $(TMP)/errtrack.json > /dev/null
	go run ./cmd/errmap -replay $(TMP)/events.jsonl > $(TMP)/replay.txt
	go run ./cmd/errmap -artifact $(TMP)/errtrack.json > $(TMP)/artifact.txt
	grep '^errtrack ' $(TMP)/replay.txt
	grep '^errtrack ' $(TMP)/replay.txt > $(TMP)/v-replay.txt
	grep '^errtrack ' $(TMP)/artifact.txt > $(TMP)/v-artifact.txt
	cmp $(TMP)/v-replay.txt $(TMP)/v-artifact.txt
	rm -rf $(TMP)
	@echo "errmap-demo: replay and artifact derive identical verdicts"

# tune-demo exercises the full autotuner loop (docs/TUNING.md): tune the
# baseline FFT and all-to-all shapes with -autotune, gate the tuned
# artifacts against the committed fixed-config baselines (benchdiff's
# tuned-vs-best-fixed gate), then reload the saved plan and prove the
# replay reproduces the autotuned run bit-identically — the artifacts
# must be byte-identical apart from the autotune config flag, which the
# diff gate sees as zero rows changed. Part of `make verify`.
tune-demo:
	$(eval TMP := $(shell mktemp -d))
	go run ./cmd/fftbench $(BENCH_FFT_FLAGS) -autotune -tuneplan $(TMP)/fft.tuneplan.json \
		-json $(TMP)/fft-tuned.json > /dev/null
	go run ./cmd/benchdiff BENCH_fft.json $(TMP)/fft-tuned.json
	go run ./cmd/fftbench $(BENCH_FFT_FLAGS) -tuneplan $(TMP)/fft.tuneplan.json \
		-json $(TMP)/fft-replay.json > /dev/null
	go run ./cmd/benchdiff $(TMP)/fft-tuned.json $(TMP)/fft-replay.json
	go run ./cmd/alltoallbench $(BENCH_A2A_FLAGS) -autotune -json $(TMP)/alltoall-tuned.json > /dev/null
	go run ./cmd/benchdiff BENCH_alltoall.json $(TMP)/alltoall-tuned.json
	rm -rf $(TMP)
	@echo "tune-demo: tuned artifacts gate green, plan replay reproduces the tuned run"

# The committed bench baselines. Small deterministic configurations —
# all times are virtual, so the artifacts are bit-identical across
# machines and regenerating them only changes the JSON when the
# simulated performance actually changed.
BENCH_FFT_FLAGS = -n 32 -sim 64 -gpus 12,24 -iters 1 -configs fp64,fp32,fp64-32,fp64-16
BENCH_A2A_FLAGS = -msg 65536 -iters 1 -gpus 12,24 -algos linear,osc,osc-comp

# bench regenerates the committed baselines in place. Run it (and commit
# the result) when a performance change is intentional.
bench:
	go run ./cmd/fftbench $(BENCH_FFT_FLAGS) -json BENCH_fft.json
	go run ./cmd/alltoallbench $(BENCH_A2A_FLAGS) -json BENCH_alltoall.json

# benchdiff regenerates the artifacts from the current tree into a temp
# directory and gates them against the committed baselines (nonzero exit
# on >10% regression or a vanished configuration).
benchdiff:
	$(eval TMP := $(shell mktemp -d))
	go run ./cmd/fftbench $(BENCH_FFT_FLAGS) -json $(TMP)/fft.json > /dev/null
	go run ./cmd/alltoallbench $(BENCH_A2A_FLAGS) -json $(TMP)/alltoall.json > /dev/null
	go run ./cmd/benchdiff BENCH_fft.json $(TMP)/fft.json
	go run ./cmd/benchdiff BENCH_alltoall.json $(TMP)/alltoall.json
	rm -rf $(TMP)

clean:
	rm -f trace-demo.json

# Convenience targets; the repo needs only the Go toolchain.

.PHONY: build test verify trace-demo clean

build:
	go build ./...

test:
	go test ./...

# verify is the tier-1 recipe from ROADMAP.md: full build + tests, vet,
# and the race detector over the packages used from concurrent rank
# goroutines (the observability layer and the exchange backends).
verify:
	go build ./...
	go test ./...
	go vet ./...
	go test -race ./internal/obs/... ./internal/exchange/...

# trace-demo runs a small compressed strong-scaling cell and writes a
# Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev) plus
# the phase-breakdown/metrics report.
trace-demo:
	go run ./cmd/fftbench -n 64 -sim 64 -gpus 24 -configs fp64-32,fp64-16 \
		-iters 1 -trace trace-demo.json -metrics

clean:
	rm -f trace-demo.json

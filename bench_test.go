// Package repro's benchmarks regenerate every table and figure of the
// paper at continuous-integration scale (small GPU counts, sim-scaled
// volumes). The cmd/ binaries run the same experiments at full scale;
// EXPERIMENTS.md records the full-scale numbers against the paper's.
//
// Custom metrics attached to each benchmark carry the figure's actual
// quantity (GB/s, Gflop/s, relative error), so `go test -bench .`
// reproduces the shape of every result in one run.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/precision"
)

// BenchmarkTableIPrecisionCasts measures the truncation casts of
// Table I — the "hardware supported" compression primitives of §IV-A.
func BenchmarkTableIPrecisionCasts(b *testing.B) {
	src := make([]float64, 1<<14)
	for i := range src {
		src[i] = float64(i%2000-1000) / 999
	}
	b.Run("FP64toFP32", func(b *testing.B) {
		b.SetBytes(int64(8 * len(src)))
		var sink float32
		for i := 0; i < b.N; i++ {
			for _, v := range src {
				sink = float32(v)
			}
		}
		_ = sink
	})
	b.Run("FP64toFP16", func(b *testing.B) {
		b.SetBytes(int64(8 * len(src)))
		var sink precision.Float16
		for i := 0; i < b.N; i++ {
			for _, v := range src {
				sink = precision.FromFloat64(v)
			}
		}
		_ = sink
	})
	b.Run("FP64toBF16", func(b *testing.B) {
		b.SetBytes(int64(8 * len(src)))
		var sink precision.BFloat16
		for i := 0; i < b.N; i++ {
			for _, v := range src {
				sink = precision.BFromFloat64(v)
			}
		}
		_ = sink
	})
}

// BenchmarkFig2MantissaSweep regenerates Fig. 2: the FFT round-trip
// error (reported as the "rel-err" metric) and the theoretical speedup
// as the communicated mantissa shrinks.
func BenchmarkFig2MantissaSweep(b *testing.B) {
	cfg := netsim.Summit(2)
	n := [3]int{16, 16, 16}
	for _, m := range []uint{52, 40, 28, 16, 8} {
		method := compress.Trim{M: m}
		b.Run(fmt.Sprintf("mantissa-%d", m), func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				r = core.Measure[complex128](cfg, n, core.Options{
					Backend: core.BackendCompressed, Method: method,
				}, 0, true)
			}
			b.ReportMetric(r.RelErr, "rel-err")
			b.ReportMetric(64/float64(method.BitsPerValue()), "speedup-theory")
		})
	}
}

// BenchmarkFig3NodeBandwidth regenerates Fig. 3: node bandwidth of the
// default linear all-to-all vs OSC_Alltoall at 80 KB per pair (the
// "GB/s" metric is what the figure plots).
func BenchmarkFig3NodeBandwidth(b *testing.B) {
	const msg = 80 * 1024
	for _, gpus := range []int{24, 96, 192} {
		for _, algo := range []string{exchange.AlgoLinear, exchange.AlgoOSC} {
			b.Run(fmt.Sprintf("%s-%dgpus", algo, gpus), func(b *testing.B) {
				var bw float64
				for i := 0; i < b.N; i++ {
					bw = exchange.NodeBandwidth(netsim.Summit(gpus/6), algo, msg, 1)
				}
				b.ReportMetric(bw/1e9, "GB/s")
			})
		}
	}
}

// BenchmarkFig4StrongScaling regenerates Fig. 4: Gflop/s of the four
// pipeline configurations on a 512³-equivalent problem.
func BenchmarkFig4StrongScaling(b *testing.B) {
	n := [3]int{32, 32, 32}
	const simScale = 16 // timed as 512³
	run := map[string]func(cfg netsim.Config) core.Result{
		"fp64": func(cfg netsim.Config) core.Result {
			return core.Measure[complex128](cfg, n, core.Options{Backend: core.BackendAlltoallv, SimScale: simScale}, 1, false)
		},
		"fp32": func(cfg netsim.Config) core.Result {
			return core.Measure[complex64](cfg, n, core.Options{Backend: core.BackendAlltoallv, SimScale: simScale}, 1, false)
		},
		"fp64-32": func(cfg netsim.Config) core.Result {
			return core.Measure[complex128](cfg, n, core.Options{Backend: core.BackendCompressed, Method: compress.Cast32{}, SimScale: simScale}, 1, false)
		},
		"fp64-16": func(cfg netsim.Config) core.Result {
			return core.Measure[complex128](cfg, n, core.Options{Backend: core.BackendCompressed, Method: compress.Cast16{}, SimScale: simScale}, 1, false)
		},
	}
	for _, gpus := range []int{24, 96} {
		for _, name := range []string{"fp64", "fp32", "fp64-32", "fp64-16"} {
			b.Run(fmt.Sprintf("%s-%dgpus", name, gpus), func(b *testing.B) {
				var r core.Result
				for i := 0; i < b.N; i++ {
					r = run[name](netsim.Summit(gpus / 6))
				}
				b.ReportMetric(r.Gflops, "Gflop/s")
			})
		}
	}
}

// BenchmarkTableIIAccuracy regenerates Table II: the relative FFT error
// of FP64, FP32, and the FP64→FP32 mixed-precision exchange.
func BenchmarkTableIIAccuracy(b *testing.B) {
	cfg := netsim.Summit(2)
	n := [3]int{32, 32, 32}
	cases := map[string]func() float64{
		"fp64": func() float64 {
			return core.Measure[complex128](cfg, n, core.Options{Backend: core.BackendAlltoallv}, 0, true).RelErr
		},
		"fp32": func() float64 {
			return core.Measure[complex64](cfg, n, core.Options{Backend: core.BackendAlltoallv}, 0, true).RelErr
		},
		"fp64-32": func() float64 {
			return core.Measure[complex128](cfg, n, core.Options{Backend: core.BackendCompressed, Method: compress.Cast32{}}, 0, true).RelErr
		},
	}
	for _, name := range []string{"fp64", "fp32", "fp64-32"} {
		b.Run(name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				e = cases[name]()
			}
			b.ReportMetric(e, "rel-err")
		})
	}
}

// BenchmarkAblationWindowCaching measures the §V-A window caching gain:
// virtual µs per one-sided epoch with a cached window vs a window
// re-created every exchange.
func BenchmarkAblationWindowCaching(b *testing.B) {
	cfg := netsim.Summit(2)
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "recreated"
		}
		b.Run(name, func(b *testing.B) {
			var perEpoch float64
			for i := 0; i < b.N; i++ {
				const epochs = 8
				var t float64
				mpi.Run(cfg, func(c *mpi.Comm) {
					c.Barrier()
					start := c.Now()
					var win *mpi.Win
					for e := 0; e < epochs; e++ {
						if win == nil || !cached {
							win = c.WinCreate(make([]byte, 1024))
						}
						win.Fence(nil)
					}
					end := c.AllreduceFloat64("max", c.Now())
					if c.Rank() == 0 {
						t = (end - start) / epochs
					}
				})
				perEpoch = t
			}
			b.ReportMetric(perEpoch*1e6, "µs/epoch")
		})
	}
}

// BenchmarkAblationPipeline measures the §V-B overlap gain on a
// communication-dominated exchange.
func BenchmarkAblationPipeline(b *testing.B) {
	cfg := netsim.Summit(4)
	for _, pipelined := range []bool{true, false} {
		name := "overlapped"
		if !pipelined {
			name = "synchronous"
		}
		b.Run(name, func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = exchange.CompressedExchangeTime(cfg, compress.Cast32{}, 8, 20000, 1, pipelined)
			}
			b.ReportMetric(t*1e3, "ms/exchange")
		})
	}
}

// BenchmarkAblationNodeAwareRing measures Algorithm 3's permute[] gain.
func BenchmarkAblationNodeAwareRing(b *testing.B) {
	for _, algo := range []string{exchange.AlgoOSC, exchange.AlgoOSCNaive} {
		b.Run(algo, func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				bw = exchange.NodeBandwidth(netsim.Summit(8), algo, 80*1024, 1)
			}
			b.ReportMetric(bw/1e9, "GB/s")
		})
	}
}

// BenchmarkToleranceDrivenFFT measures Algorithm 1 end to end across
// user tolerances: looser tolerance → stronger compression → faster.
func BenchmarkToleranceDrivenFFT(b *testing.B) {
	cfg := netsim.Summit(4)
	n := [3]int{32, 32, 32}
	for _, etol := range []float64{1e-3, 1e-6, 1e-12} {
		b.Run(fmt.Sprintf("etol-%.0e", etol), func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				r = core.Measure[complex128](cfg, n, core.Options{
					Backend: core.BackendCompressed, Tolerance: etol, SimScale: 8,
				}, 1, true)
			}
			b.ReportMetric(r.Gflops, "Gflop/s")
			b.ReportMetric(r.RelErr, "rel-err")
		})
	}
}
